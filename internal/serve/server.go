// Package serve is the long-running query layer over the reproduction's
// engines: butterflyd's HTTP/JSON API. Each endpoint parses a query into
// its canonical form, answers from a bounded LRU result cache when it can,
// coalesces concurrent identical queries into one underlying solve, and
// otherwise runs the engines under a per-request deadline threaded into
// solve.Monitor contexts — so an expensive query degrades to a best-so-far
// answer marked non-exact, exactly like the CLI commands under -timeout.
//
// Responses reuse the obs.Manifest run-manifest schema: the same named
// tables the commands write under -json, one document per request, so
// server answers and CLI artifacts are interchangeable downstream.
//
// Overload is explicit, not implicit: a worker semaphore bounds concurrent
// solves, a bounded wait queue absorbs short bursts, and past that the
// server answers 429 (queue full) or 503 (queued too long / draining)
// instead of stacking goroutines. Shutdown drains: in-flight solves are
// signalled to wind down and their handlers still write best-so-far
// responses before the listener closes.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Registry metrics of the request path.
var (
	metricSolves      = obs.NewCounter("serve.solves")
	metricErrors      = obs.NewCounter("serve.errors")
	metricRejected429 = obs.NewCounter("serve.rejected_429")
	metricRejected503 = obs.NewCounter("serve.rejected_503")
	metricInflight    = obs.NewGauge("serve.inflight")
	metricCacheSpills = obs.NewCounter("serve.cache_spills")
	metricStoreFills  = obs.NewCounter("serve.store_fills")
)

// requestOutcomes are the outcome-labeled request counters
// (serve.requests.<outcome>) that replaced the old undifferentiated
// serve.requests — which incremented before method/parse validation, so
// a flood of rejected garbage was indistinguishable from served load.
// Every request increments exactly one of these, after its fate is known:
//
//	ok         solved fresh, complete, 200
//	cache_hit  answered from the LRU
//	store_hit  answered from the persistent store
//	coalesced  attached to another request's in-flight solve
//	peer       relayed from the cluster peer owning the key
//	timeout    200 but budget/drain-truncated (best-so-far rows)
//	400/405/422/429/500/503  rejected or failed, by status
var requestOutcomes = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter)
	for _, o := range []string{
		"ok", "cache_hit", "store_hit", "coalesced", "peer", "timeout",
		"400", "405", "422", "429", "500", "503",
	} {
		m[o] = obs.NewCounter("serve.requests." + o)
	}
	return m
}()

// classifyOutcome maps a finished request's (status, X-Cache source,
// complete) triple onto its outcome label.
func classifyOutcome(status int, source string, complete bool) string {
	if status != http.StatusOK {
		if _, ok := requestOutcomes[strconv.Itoa(status)]; ok {
			return strconv.Itoa(status)
		}
		return "500"
	}
	if !complete {
		return "timeout"
	}
	switch source {
	case "hit":
		return "cache_hit"
	case "store-hit":
		return "store_hit"
	case "coalesced":
		return "coalesced"
	case "peer":
		return "peer"
	}
	return "ok"
}

// Config tunes a Server. The zero value serves with GOMAXPROCS solve
// workers, a 4×-deep wait queue, a 10s default / 60s maximum deadline and
// a 256-entry result cache.
type Config struct {
	// MaxInflight bounds concurrently running solves (≤0: GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for a solve slot; past it the
	// server answers 429 immediately (≤0: 4×MaxInflight).
	MaxQueue int
	// QueueWait is how long an admitted-to-queue request waits for a slot
	// before a 503 (≤0: 2s).
	QueueWait time.Duration
	// DefaultDeadline is the solve budget when the request names none
	// (≤0: 10s); MaxDeadline caps client-requested budgets (≤0: 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CacheEntries bounds the LRU result cache (≤0: 256); CacheBytes
	// bounds its approximate memory footprint (≤0: 64 MiB). Eviction
	// fires on whichever bound trips first.
	CacheEntries int
	CacheBytes   int64
	// Store, when non-nil, is the persistent result store: the LRU spills
	// evictions into it, cache misses fall back to it (X-Cache:
	// store-hit), Shutdown flushes the surviving cache entries to it, and
	// Precompute batch-fills it.
	Store *store.Store
	// Trace, when non-nil, receives one span per request plus the solver
	// spans of the engines it runs.
	Trace *obs.Tracer
	// AccessLog, when non-nil, receives one structured JSONL record per
	// /v1/* request: request ID, endpoint, canonical key, status, outcome,
	// X-Cache source, µs latency and bytes written.
	AccessLog io.Writer
	// Peers, when non-nil, shards canonical keys across a cluster: after
	// the local cache and store miss, the handler asks the router for the
	// owning peer's response and relays it verbatim (X-Cluster-Peer
	// carries the provenance). Requests the router declines — locally
	// owned, already forwarded once, or the owner is down — solve here.
	Peers PeerRouter
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.DefaultDeadline > c.MaxDeadline {
		c.DefaultDeadline = c.MaxDeadline
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// Server is the butterflyd query daemon: a hardened http.Server over a
// dedicated mux, the result cache, the coalescing group and the admission
// semaphore. Build it with New, run it with Serve, stop it with Shutdown.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	http   *http.Server
	cache  *lruCache
	flight *flightGroup

	sem    chan struct{}
	queued atomic.Int64

	// baseCtx parents every solve context; Shutdown cancels it so
	// in-flight solves wind down to best-so-far results while their
	// handlers finish writing.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	env       obs.Environment
	startTime time.Time
	accessLog *accessLogger

	// latencies holds each endpoint's serve.latency_us histogram handle
	// (written once at wiring time); /debug/statusz reads quantiles off
	// them.
	latencies map[string]*obs.Histogram

	// Request-ID generation: a per-process base plus a sequence number,
	// so IDs are unique across restarts without coordination.
	idBase string
	idSeq  atomic.Int64

	// solveHook, when non-nil, is invoked by the coalescing leader after
	// admission, before solving. Tests set it (before the server starts)
	// to hold a solve in flight while followers attach; production leaves
	// it nil.
	solveHook func(key string)
}

// response is one rendered API answer. complete reports that the solve
// ran to its natural end (nothing was cancelled by deadline or drain) —
// only complete responses enter the cache, so a budget-truncated answer
// can never mask the full one.
type response struct {
	body     []byte
	complete bool
}

// httpError carries a status code through the solve path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

var (
	errQueueFull = &httpError{http.StatusTooManyRequests, "solve queue full, retry later"}
	errQueueWait = &httpError{http.StatusServiceUnavailable, "no solve slot within the queue wait, retry later"}
	errDraining  = &httpError{http.StatusServiceUnavailable, "server is draining"}
)

// New builds a Server (not yet listening).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		flight:    newFlightGroup(),
		sem:       make(chan struct{}, cfg.MaxInflight),
		env:       obs.CaptureEnvironment(),
		startTime: time.Now(),
		accessLog: newAccessLogger(cfg.AccessLog),
		latencies: make(map[string]*obs.Histogram),
		idBase:    strconv.FormatUint(uint64(time.Now().UnixNano())&0xffffffffff, 36),
	}
	// Runtime health gauges refresh on every /debug/metrics scrape (and
	// statusz), so bench reports can correlate tail latency with GC.
	obs.RegisterRuntimeGauges(obs.Default)
	// LRU evictions spill to the persistent store (when configured), so
	// falling out of memory costs a future request one disk read, not one
	// solve — and a restart loses nothing that was ever cached.
	var onEvict func(key string, resp *response)
	if cfg.Store != nil {
		onEvict = func(key string, resp *response) {
			if s.spill(key, resp) {
				metricCacheSpills.Inc()
			}
		}
	}
	s.cache = newLRUCache(cfg.CacheEntries, cfg.CacheBytes, onEvict)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/debug/metrics", obs.Default)
	s.mux.HandleFunc("/debug/statusz", s.handleStatusz)
	s.mux.HandleFunc("/v1/bisection", s.handleQuery("bisection", parseBisectionRequest))
	s.mux.HandleFunc("/v1/expansion", s.handleQuery("expansion", parseExpansionRequest))
	s.mux.HandleFunc("/v1/routing", s.handleQuery("routing", parseRoutingRequest))
	s.mux.HandleFunc("/v1/report", s.handleQuery("report", parseReportRequest))

	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No WriteTimeout: responses are written after solves that may
		// legitimately run up to MaxDeadline; the solve deadline is the
		// write bound.
	}
	return s
}

// Handler returns the server's dedicated mux — the full API surface —
// for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown; like http.Server.Serve
// it returns http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// Shutdown drains the server: /healthz flips to 503 (load balancers stop
// routing), in-flight solves are signalled to wind down — they return
// best-so-far results marked non-exact, and their handlers still write
// those responses — and the HTTP server stops once every handler has
// finished, or when ctx expires.
// When a persistent store is configured, the drained cache is flushed
// into it before returning, so the hot set survives into the next
// process (the warm-start snapshot).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.baseCancel()
	err := s.http.Shutdown(ctx)
	if _, ferr := s.FlushStore(); err == nil {
		err = ferr
	}
	return err
}

// handleHealthz answers 200 "ok" while serving and 503 "draining" once
// shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// requestID resolves the request's ID: a well-formed client-supplied
// X-Request-ID is honored (echoed back, so callers can pre-correlate),
// anything else gets a generated one. Either way the ID rides the
// response header, the request's trace span and its access-log line.
func (s *Server) requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	return s.idBase + "-" + strconv.FormatInt(s.idSeq.Add(1), 10)
}

// sanitizeRequestID accepts client IDs of 1–64 characters drawn from
// [A-Za-z0-9._-]; anything else (log-injection vectors included) is
// discarded in favor of a generated ID.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// handleQuery wraps one API endpoint: parse → cache → coalesce → admit →
// solve under deadline → render. Around the whole request: the
// endpoint's µs-resolution latency histogram, an outcome counter
// incremented exactly once after the request's fate is known (never
// before validation — a 400 flood must not read as served load), the
// X-Request-ID header, an optional trace span and an access-log line.
func (s *Server) handleQuery(name string, parse func(q queryValues) (queryRequest, error)) http.HandlerFunc {
	latency := obs.NewHistogram("serve.latency_us." + name)
	s.latencies[name] = latency
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		metricInflight.Add(1)
		defer metricInflight.Add(-1)

		id := s.requestID(r)
		w.Header().Set("X-Request-ID", id)

		// The request's fate, filled in as it is decided; the deferred
		// block turns it into the latency observation, the outcome counter
		// and the access-log line.
		status, source, complete := http.StatusOK, "miss", true
		key, written := "", 0
		defer func() {
			us := int64(time.Since(start) / time.Microsecond)
			latency.Observe(us)
			outcome := classifyOutcome(status, source, complete)
			requestOutcomes[outcome].Inc()
			s.accessLog.log(accessRecord{
				ID:        id,
				Endpoint:  name,
				Method:    r.Method,
				Path:      r.URL.RequestURI(),
				Remote:    r.RemoteAddr,
				Key:       key,
				Status:    status,
				Outcome:   outcome,
				Source:    source,
				Complete:  complete,
				LatencyUS: us,
				Bytes:     written,
			})
		}()
		fail := func(err error) {
			status = errorStatus(err)
			s.writeError(w, err)
		}

		if r.Method != http.MethodGet {
			fail(&httpError{http.StatusMethodNotAllowed, "use GET"})
			return
		}
		q := queryValues(r.URL.Query())
		req, err := parse(q)
		if err != nil {
			fail(&httpError{http.StatusBadRequest, err.Error()})
			return
		}
		deadline, err := q.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
		if err != nil {
			fail(&httpError{http.StatusBadRequest, err.Error()})
			return
		}
		key = name + "?" + req.Key()

		span := s.cfg.Trace.StartSpan("request", obs.Attrs{"endpoint": name, "key": key, "request_id": id})
		defer func() {
			span.End(obs.Attrs{"status": status, "source": source, "request_id": id})
		}()

		if resp, ok := s.cache.get(key); ok {
			source = "hit"
			written = len(resp.body)
			s.writeResponse(w, resp, source)
			return
		}
		// LRU miss: fall back to the persistent store before solving. A
		// stored body is a past complete solve, served verbatim — a
		// restarted daemon answers everything it (or a precompute batch)
		// ever solved at disk-read cost, no solver invoked.
		if resp, ok := s.storeGet(key); ok {
			source = "store-hit"
			s.cache.put(key, resp)
			written = len(resp.body)
			s.writeResponse(w, resp, source)
			return
		}

		// Cluster mode: a key this node does not own is answered by its
		// owning peer and relayed verbatim — byte-identical to asking the
		// owner directly. The relayed body is deliberately not cached
		// here, so each result occupies cluster cache capacity once. When
		// the router declines (local key, forwarded-in request, owner
		// down), fall through to the local solve.
		if s.cfg.Peers != nil {
			if pr, fwd, rerr := s.cfg.Peers.Route(r, key); rerr == nil && fwd {
				status = pr.Status
				source = "peer"
				written = len(pr.Body)
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.Header().Set("X-Cache", source)
				w.Header().Set("X-Cluster-Peer", pr.Peer)
				if pr.Status != http.StatusOK {
					w.WriteHeader(pr.Status)
				}
				_, _ = w.Write(pr.Body)
				return
			}
			w.Header().Set("X-Cluster-Peer", s.cfg.Peers.Self())
		}

		resp, shared, err := s.flight.do(r.Context(), key, func() (*response, error) {
			// The leader's solve must not die with the leader's client:
			// coalesced followers with live deadlines still want the
			// answer (and so does the cache). Detach onto the server
			// lifetime, bounded by the worst-case queue wait plus this
			// request's solve budget; the leader's own disconnect is
			// irrelevant past this point.
			ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.QueueWait+deadline)
			defer cancel()
			return s.solve(ctx, name, key, req, deadline)
		})
		if shared {
			source = "coalesced"
		}
		if err == nil && resp == nil {
			err = &httpError{http.StatusInternalServerError, "solve produced no result"}
		}
		if err != nil {
			fail(err)
			return
		}
		complete = resp.complete
		written = len(resp.body)
		s.writeResponse(w, resp, source)
	}
}

// AccessLogErr returns the access logger's sticky sink error, if any
// (for end-of-run reporting, the obs.Tracer.Err idiom).
func (s *Server) AccessLogErr() error { return s.accessLog.Err() }

// solve is the coalescing leader's path: admission, deadline, engines,
// rendering, cache fill. callCtx is the detached per-solve context the
// handler built (server lifetime bounded by queue wait + budget), NOT
// the leader's client context — a leader disconnect must not poison the
// followers coalesced behind it, in the queue or mid-solve.
func (s *Server) solve(callCtx context.Context, name, key string, req queryRequest, deadline time.Duration) (*response, error) {
	release, err := s.admit(callCtx)
	if err != nil {
		return nil, err
	}
	defer release()

	if s.solveHook != nil {
		s.solveHook(key)
	}

	// The solve context parents on the server, not the leader's client:
	// coalesced followers (and the cache) still want the answer if the
	// leading client disconnects, and Shutdown cancels baseCtx so drain
	// turns every in-flight solve into a prompt best-so-far return.
	ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
	defer cancel()

	metricSolves.Inc()
	begin := time.Now()
	m, err := req.Solve(ctx, s)
	if err != nil {
		return nil, err
	}
	complete := ctx.Err() == nil

	resp, err := s.render(m, name, key, deadline, complete, time.Since(begin))
	if err != nil {
		return nil, err
	}
	if complete {
		s.cache.put(key, resp)
	}
	return resp, nil
}

// render turns a solved manifest into the response the handler writes —
// the single rendering path shared by live solves and the precompute
// batch, so a stored body and a freshly served one are the same bytes
// (modulo wall-clock telemetry).
func (s *Server) render(m *obs.Manifest, name, key string, deadline time.Duration, complete bool, elapsed time.Duration) (*response, error) {
	m.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	env := s.env
	m.Env = &env
	m.AddTable("serve", "butterflyd request record", []requestRow{{
		Endpoint:   name,
		Key:        key,
		Complete:   complete,
		DeadlineMS: float64(deadline) / float64(time.Millisecond),
	}})
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	return &response{body: body, complete: complete}, nil
}

// storeGet looks key up in the persistent store. Errors (bit rot, a
// mid-compaction crash) are deliberately soft: the request falls through
// to a fresh solve, and store.read_errors records that it happened.
func (s *Server) storeGet(key string) (*response, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	body, ok, err := s.cfg.Store.Get(key)
	if err != nil || !ok {
		return nil, false
	}
	return &response{body: body, complete: true}, true
}

// spill persists one complete response to the store unless it is already
// there. It reports whether a write happened; write errors are soft (the
// result is still in memory or recomputable).
func (s *Server) spill(key string, resp *response) bool {
	if s.cfg.Store == nil || !resp.complete || s.cfg.Store.Has(key) {
		return false
	}
	return s.cfg.Store.Put(key, resp.body) == nil
}

// FlushStore persists every complete cached response that the store does
// not already hold, then syncs. Shutdown calls it so a drain snapshots
// the hot set — the warm-start state of the next process.
func (s *Server) FlushStore() (int, error) {
	if s.cfg.Store == nil {
		return 0, nil
	}
	n := 0
	for _, e := range s.cache.snapshot() {
		if s.spill(e.key, e.resp) {
			n++
			metricStoreFills.Inc()
		}
	}
	return n, s.cfg.Store.Sync()
}

// admit acquires a solve slot. A free slot is immediate; otherwise the
// request queues — bounded by MaxQueue (past it: 429) and by QueueWait
// (past it: 503). A draining server admits nothing new.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		metricRejected503.Inc()
		return nil, errDraining
	}
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		metricRejected429.Inc()
		return nil, errQueueFull
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-t.C:
		metricRejected503.Inc()
		return nil, errQueueWait
	case <-ctx.Done():
		return nil, &httpError{http.StatusServiceUnavailable, "client gave up while queued"}
	case <-s.baseCtx.Done():
		metricRejected503.Inc()
		return nil, errDraining
	}
}

// requestRow is the per-request metadata table every response carries:
// which endpoint answered, under which canonical key, whether the solve
// ran to completion (false: deadline or drain truncated it and the rows
// are best-so-far, marked non-exact where applicable), and the budget of
// the request that did the solving.
type requestRow struct {
	Endpoint   string  `json:"endpoint"`
	Key        string  `json:"key"`
	Complete   bool    `json:"complete"`
	DeadlineMS float64 `json:"deadline_ms"`
}

func (s *Server) writeResponse(w http.ResponseWriter, resp *response, source string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Cache", source)
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	_, _ = w.Write(resp.body)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	metricErrors.Inc()
	status := errorStatus(err)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(err)))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// retryAfterSeconds derives the Retry-After hint from the admission
// configuration instead of a hard-coded 1s: a 429 means the queue is
// full, so a slot opens within about one queue-wait; a queue-wait 503
// means the server was saturated for a full QueueWait already, so back
// off twice that; a draining server is going away — the longer hint
// steers clients to a healthy peer instead of hammering the corpse.
func (s *Server) retryAfterSeconds(err error) int {
	wait := s.cfg.QueueWait
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	switch err {
	case errQueueFull:
		return secs
	case errQueueWait, errDraining:
		return 2 * secs
	}
	if s.draining.Load() {
		return 2 * secs
	}
	return secs
}

func errorStatus(err error) int {
	if he, ok := err.(*httpError); ok {
		return he.status
	}
	if err == context.Canceled || err == context.DeadlineExceeded {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
