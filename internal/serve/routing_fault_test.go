package serve

import (
	"io"
	"net/http"
	"testing"
	"time"
)

// getWithHeaders fetches url and returns the status, the full header set
// and the body — the Retry-After assertions need more than X-Cache.
func getWithHeaders(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestRoutingFaultQuery: a drop-rate sweep answers one manifest with a
// routing.faults table of one row per rate, caches under a canonical key
// (parameter order and explicit defaults see through to the same entry),
// and reports the degradation in the stats.
func TestRoutingFaultQuery(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	url := base + "/v1/routing?n=8&trials=3&seed=7&drop=0,0.1&retransmits=4"

	status, source, body := get(t, url)
	if status != http.StatusOK || source != "miss" {
		t.Fatalf("first: status=%d source=%q: %s", status, source, body)
	}
	m, row := decodeResponse(t, body)
	tab := m.Table("routing.faults")
	if tab == nil {
		t.Fatalf("missing routing.faults table:\n%s", body)
	}
	rows, ok := tab.Rows.([]interface{})
	if !ok || len(rows) != 2 {
		t.Fatalf("routing.faults rows = %#v, want 2 (one per drop rate)", tab.Rows)
	}
	healthy := rows[0].(map[string]interface{})
	lossy := rows[1].(map[string]interface{})
	if healthy["drop_prob"] != nil {
		t.Errorf("healthy row has drop_prob %v, want omitted", healthy["drop_prob"])
	}
	if lossy["drop_prob"] != 0.1 {
		t.Errorf("lossy row drop_prob = %v, want 0.1", lossy["drop_prob"])
	}
	hs := healthy["stats"].(map[string]interface{})
	ls := lossy["stats"].(map[string]interface{})
	if hs["delivered_rate"] != 1.0 {
		t.Errorf("healthy delivered_rate = %v, want 1", hs["delivered_rate"])
	}
	if lr, ok := ls["delivered_rate"].(float64); !ok || lr >= 1 {
		t.Errorf("lossy delivered_rate = %v, want < 1 with a bounded budget", ls["delivered_rate"])
	}
	if row["complete"] != true {
		t.Errorf("serve row = %v, want complete=true", row)
	}

	// Identical query: cache hit. Reordered spelling with explicit
	// defaults: the canonical key sees through it.
	if status, source, _ := get(t, url); status != http.StatusOK || source != "hit" {
		t.Fatalf("repeat: status=%d source=%q", status, source)
	}
	reordered := base + "/v1/routing?drop=0,0.1&seed=7&trials=3&n=8&retransmits=4&switching=sf&dead=0&kind=random"
	if status, source, _ := get(t, reordered); status != http.StatusOK || source != "hit" {
		t.Fatalf("canonicalized repeat: status=%d source=%q", status, source)
	}
}

// TestRoutingAdversarialKinds: hotspot and bitreversal answer their own
// tables; cut-through switching and dead links round-trip too.
func TestRoutingAdversarialKinds(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	for _, c := range []struct {
		url   string
		table string
	}{
		{"/v1/routing?n=8&trials=2&kind=hotspot", "routing.hotspot"},
		{"/v1/routing?n=8&trials=2&kind=bitreversal", "routing.bitreversal"},
		{"/v1/routing?n=8&trials=2&switching=ct", "routing.faults"},
		{"/v1/routing?n=8&trials=2&dead=0.05&kind=permutation", "routing.faults"},
	} {
		status, _, body := get(t, base+c.url)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", c.url, status, body)
		}
		m, _ := decodeResponse(t, body)
		if m.Table(c.table) == nil {
			t.Errorf("%s: missing table %s", c.url, c.table)
		}
	}
}

// TestRoutingExhausted422: a fault intensity under which every trial
// exhausts the step limit answers a clean 422 — the failure mode that
// used to panic the daemon — and leaves the server serving.
func TestRoutingExhausted422(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	status, _, body := get(t, base+"/v1/routing?n=8&trials=2&drop=0.999")
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", status, body)
	}
	// The daemon survives and still answers healthy queries.
	if status, _, body := get(t, base+"/v1/routing?n=8&trials=2"); status != http.StatusOK {
		t.Fatalf("follow-up healthy query: status %d: %s", status, body)
	}
}

// TestRoutingFaultValidation rejects out-of-range fault parameters with
// 400 before any solve runs.
func TestRoutingFaultValidation(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	for _, url := range []string{
		"/v1/routing?n=8&drop=1",                                 // probability must be < 1
		"/v1/routing?n=8&drop=-0.1",                              // negative probability
		"/v1/routing?n=8&drop=0.1,lots",                          // malformed list
		"/v1/routing?n=8&dead=2",                                 // dead-link probability out of range
		"/v1/routing?n=8&retransmits=-1",                         // negative budget
		"/v1/routing?n=8&switching=warp",                         // unknown discipline
		"/v1/routing?n=8&kind=wrapped",                           // Wn kind not served on Bn rows
		"/v1/routing?n=8&drop=0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0", // sweep too long
	} {
		status, _, body := get(t, base+url)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", url, status, body)
		}
	}
}

// TestRetryAfterDerivedFromQueueWait: the backoff hint follows the
// configured admission window instead of a hard-coded 1s — one
// queue-wait for a full queue, twice that for a saturated or draining
// server.
func TestRetryAfterDerivedFromQueueWait(t *testing.T) {
	s := New(Config{QueueWait: 1500 * time.Millisecond})
	if got := s.retryAfterSeconds(errQueueFull); got != 2 {
		t.Errorf("queue-full Retry-After = %d, want ceil(1.5) = 2", got)
	}
	if got := s.retryAfterSeconds(errQueueWait); got != 4 {
		t.Errorf("queue-wait Retry-After = %d, want 2×2 = 4", got)
	}
	if got := s.retryAfterSeconds(errDraining); got != 4 {
		t.Errorf("draining Retry-After = %d, want 2×2 = 4", got)
	}

	// Sub-second waits still hint at least one second.
	fast := New(Config{QueueWait: 100 * time.Millisecond})
	if got := fast.retryAfterSeconds(errQueueFull); got != 1 {
		t.Errorf("fast queue-full Retry-After = %d, want 1", got)
	}
	if got := fast.retryAfterSeconds(errQueueWait); got != 2 {
		t.Errorf("fast queue-wait Retry-After = %d, want 2", got)
	}
}

// TestRetryAfterHeaderEndToEnd drives a real overload and reads the
// derived header off the wire: 429 carries the queue-wait, the queue-wait
// 503 carries twice it.
func TestRetryAfterHeaderEndToEnd(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{MaxInflight: 1, MaxQueue: 1, QueueWait: 1200 * time.Millisecond})
	s.solveHook = func(key string) {
		started <- key
		<-gate
	}
	base := startServer(t, s)
	defer close(gate)

	go func() {
		if resp, err := http.Get(base + "/v1/bisection?network=bn&n=4"); err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	// A distinct query fills the one queue slot.
	queued := make(chan http.Header, 1)
	go func() {
		resp, err := http.Get(base + "/v1/bisection?network=bn&n=8")
		if err != nil {
			queued <- http.Header{}
			return
		}
		resp.Body.Close()
		queued <- resp.Header
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 }, "second request never queued")

	// Queue full: 429 with Retry-After = ceil(1.2s) = 2.
	status, h, body := getWithHeaders(t, base+"/v1/bisection?network=wn&n=4")
	if status != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d: %s", status, body)
	}
	if got := h.Get("Retry-After"); got != "2" {
		t.Errorf("429 Retry-After = %q, want 2", got)
	}

	// Queue wait expires: 503 with Retry-After = 2×2 = 4.
	if got := (<-queued).Get("Retry-After"); got != "4" {
		t.Errorf("503 Retry-After = %q, want 4", got)
	}
}
