package serve

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// metricCoalesced counts requests that joined an identical in-flight
// solve instead of starting their own — the coalescing tests poll it to
// know all followers have attached before releasing the leader.
var metricCoalesced = obs.NewCounter("serve.coalesced")

// flightGroup is a singleflight: concurrent calls with the same key share
// one execution of fn. Unlike a cache it holds no results past the call —
// the lruCache layered above it handles reuse across time; the group only
// collapses the concurrent burst.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	resp *response
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn under key, or — when an identical call is already in flight —
// waits for that call's result. shared reports whether this caller joined
// rather than led. A waiting follower whose ctx expires abandons the wait
// (the leader keeps solving for the remaining followers) and gets
// ctx.Err().
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*response, error)) (resp *response, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		metricCoalesced.Inc()
		select {
		case <-call.done:
			return call.resp, true, call.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	defer func() {
		// Publish the result (even on panic: followers see a nil response
		// rather than hanging forever) and retire the key so the next
		// identical request starts fresh.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(call.done)
	}()
	call.resp, call.err = fn()
	return call.resp, false, call.err
}
