package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitFor polls cond once a millisecond for up to 10s — the test-side
// synchronization primitive for "the server has reached state X".
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// startServer runs a real Server on a loopback listener (httptest's
// server wraps its own http.Server, which would bypass Shutdown).
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.Serve(ln); err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		<-done
	})
	return "http://" + ln.Addr().String()
}

// get fetches url and returns status, the X-Cache header and the body.
func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

// decodeResponse parses a response body as a run manifest (schema
// checked) and returns it with its serve-table request record.
func decodeResponse(t *testing.T, body []byte) (*obs.Manifest, map[string]interface{}) {
	t.Helper()
	m, err := obs.DecodeManifest(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a valid run manifest: %v\n%s", err, body)
	}
	tab := m.Table("serve")
	if tab == nil {
		t.Fatalf("response has no serve table:\n%s", body)
	}
	rows, ok := tab.Rows.([]interface{})
	if !ok || len(rows) != 1 {
		t.Fatalf("serve table rows = %#v, want one row", tab.Rows)
	}
	row, ok := rows[0].(map[string]interface{})
	if !ok {
		t.Fatalf("serve row = %#v", rows[0])
	}
	return m, row
}

// TestQueryAnswersAndCaches covers the basic read path: a valid query
// answers 200 with a schema-stamped manifest, a repeat answers from the
// cache byte-identically without re-solving.
func TestQueryAnswersAndCaches(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	url := base + "/v1/bisection?network=wn&n=8"

	solvesBefore := metricSolves.Value()
	status, source, body := get(t, url)
	if status != http.StatusOK || source != "miss" {
		t.Fatalf("first: status=%d source=%q", status, source)
	}
	m, row := decodeResponse(t, body)
	if m.Command != "butterflyd" {
		t.Fatalf("command = %q", m.Command)
	}
	if tab := m.Table("bisection.wn"); tab == nil {
		t.Fatalf("missing bisection.wn table:\n%s", body)
	}
	if row["complete"] != true {
		t.Fatalf("serve row = %v, want complete=true", row)
	}

	status, source, body2 := get(t, url)
	if status != http.StatusOK || source != "hit" {
		t.Fatalf("second: status=%d source=%q", status, source)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cached response differs from the original")
	}
	if got := metricSolves.Value() - solvesBefore; got != 1 {
		t.Fatalf("%d solves for two identical queries, want 1", got)
	}

	// Spelling differences canonicalize to the same cache entry.
	status, source, _ = get(t, base+"/v1/bisection?n=8&network=wn&exact-nodes=32")
	if status != http.StatusOK || source != "hit" {
		t.Fatalf("canonicalized repeat: status=%d source=%q", status, source)
	}
}

// TestCoalescingSingleSolve is the acceptance test for request
// coalescing: N concurrent identical queries trigger exactly one
// underlying solve, deterministically — the leader is held at the solve
// hook until every follower has attached.
func TestCoalescingSingleSolve(t *testing.T) {
	const followers = 5
	gate := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{MaxInflight: 2})
	s.solveHook = func(key string) {
		started <- key
		<-gate
	}
	base := startServer(t, s)
	url := base + "/v1/bisection?network=bn&n=4"

	solvesBefore := metricSolves.Value()
	coalescedBefore := metricCoalesced.Value()

	type outcome struct {
		status int
		source string
		body   []byte
	}
	results := make(chan outcome, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, src, body := get(t, url)
		results <- outcome{st, src, body}
	}()
	<-started // the leader is in flight, holding its solve slot

	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, src, body := get(t, url)
			results <- outcome{st, src, body}
		}()
	}
	waitFor(t, func() bool { return metricCoalesced.Value()-coalescedBefore >= followers },
		"followers never attached to the in-flight solve")
	close(gate)
	wg.Wait()
	close(results)

	var bodies [][]byte
	sources := map[string]int{}
	for o := range results {
		if o.status != http.StatusOK {
			t.Fatalf("status %d: %s", o.status, o.body)
		}
		sources[o.source]++
		bodies = append(bodies, o.body)
	}
	if sources["miss"] != 1 || sources["coalesced"] != followers {
		t.Fatalf("sources = %v, want 1 miss + %d coalesced", sources, followers)
	}
	for _, b := range bodies[1:] {
		if !bytes.Equal(bodies[0], b) {
			t.Fatal("coalesced responses differ")
		}
	}
	if got := metricSolves.Value() - solvesBefore; got != 1 {
		t.Fatalf("%d solves for %d concurrent identical queries, want exactly 1", got, followers+1)
	}
}

// TestDeadlineReturnsBestSoFarNonExact: a solve that cannot finish inside
// its budget still answers 200, with the exact row marked incomplete and
// the response excluded from the cache.
func TestDeadlineReturnsBestSoFarNonExact(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	// B16 has 80 nodes: the exact branch-and-bound cannot possibly finish
	// in 150ms, so the row degrades to the best incumbent, marked
	// non-exact — the served twin of the CLI's -timeout behavior.
	url := base + "/v1/bisection?network=bn&n=16&exact-nodes=128&timeout=150ms"

	start := time.Now()
	status, source, body := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadline-bounded solve took %v", took)
	}
	_, row := decodeResponse(t, body)
	if row["complete"] != false {
		t.Fatalf("serve row = %v, want complete=false", row)
	}
	var doc struct {
		Tables []struct {
			Name string `json:"name"`
			Rows []struct {
				Exact         int  `json:"exact"`
				ExactComplete bool `json:"exact_complete"`
			} `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tab := range doc.Tables {
		if tab.Name != "bisection.bn" {
			continue
		}
		found = true
		if len(tab.Rows) != 1 || tab.Rows[0].ExactComplete {
			t.Fatalf("rows = %+v, want one non-exact row", tab.Rows)
		}
		if tab.Rows[0].Exact <= 0 {
			t.Fatalf("best-so-far incumbent = %d, want a feasible upper bound", tab.Rows[0].Exact)
		}
	}
	if !found {
		t.Fatalf("no bisection.bn table:\n%s", body)
	}

	// Truncated answers must not be cached: a repeat is a fresh miss.
	if _, source2, _ := get(t, url); source2 == "hit" {
		t.Fatal("budget-truncated response was served from cache")
	}
	_ = source
}

// TestShutdownDrainsInflightSolve is the acceptance test for graceful
// drain: Shutdown while a solve is in flight signals it to wind down, the
// handler still writes a best-so-far non-exact response, and Shutdown
// returns once it is written.
func TestShutdownDrainsInflightSolve(t *testing.T) {
	started := make(chan string, 1)
	s := New(Config{})
	s.solveHook = func(key string) { started <- key }
	base := startServer(t, s)
	// Without the drain, this exact solve would run for its full 30s
	// budget; the test passing quickly is itself the drain working.
	url := base + "/v1/bisection?network=bn&n=16&exact-nodes=128&timeout=30s"

	type outcome struct {
		status int
		body   []byte
	}
	done := make(chan outcome, 1)
	go func() {
		st, _, body := get(t, url)
		done <- outcome{st, body}
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownStart := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	if took := time.Since(shutdownStart); took > 10*time.Second {
		t.Fatalf("drain took %v", took)
	}

	o := <-done
	if o.status != http.StatusOK {
		t.Fatalf("drained request: status %d: %s", o.status, o.body)
	}
	_, row := decodeResponse(t, o.body)
	if row["complete"] != false {
		t.Fatalf("drained response row = %v, want complete=false (best-so-far, non-exact)", row)
	}
}

// TestOverloadAnswers429And503: with one solve slot and a one-deep queue,
// a held solve plus a queued request forces the third into 429 (queue
// full) and resolves the queued one into 503 (queue wait expired).
func TestOverloadAnswers429And503(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{MaxInflight: 1, MaxQueue: 1, QueueWait: 300 * time.Millisecond})
	s.solveHook = func(key string) {
		started <- key
		<-gate
	}
	base := startServer(t, s)

	// Leader occupies the only solve slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, base+"/v1/bisection?network=bn&n=4")
	}()
	<-started

	// A *different* query queues (identical ones would coalesce).
	queuedStatus := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, _, _ := get(t, base+"/v1/bisection?network=bn&n=8")
		queuedStatus <- st
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 }, "second request never queued")

	// A third distinct query finds the queue full: immediate 429.
	st, _, body := get(t, base+"/v1/bisection?network=wn&n=4")
	if st != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d: %s", st, body)
	}

	// The queued request times out of the queue: 503.
	if st := <-queuedStatus; st != http.StatusServiceUnavailable {
		t.Fatalf("queue-wait status = %d", st)
	}
	close(gate)
	wg.Wait()
}

// TestRequestValidation rejects malformed queries with 400 and names the
// offending parameter; wrong methods get 405.
func TestRequestValidation(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/bisection?network=bn&n=7", http.StatusBadRequest},         // not a power of two
		{"/v1/bisection?network=zz&n=8", http.StatusBadRequest},         // unknown network
		{"/v1/bisection", http.StatusBadRequest},                        // n required
		{"/v1/bisection?network=bn&n=8&bogus=1", http.StatusBadRequest}, // unknown parameter
		{"/v1/bisection?network=bn&n=8&timeout=forever", http.StatusBadRequest},
		{"/v1/expansion?kind=xx&n=16", http.StatusBadRequest},
		{"/v1/expansion?kind=ne_wn&n=8", http.StatusBadRequest},      // too small for witnesses
		{"/v1/expansion?kind=ee_wn&n=64&d=9", http.StatusBadRequest}, // d out of range
		{"/v1/routing?n=64&trials=0", http.StatusBadRequest},
		{"/v1/routing?n=64&kind=sorted", http.StatusBadRequest},
		{"/v1/report?quick=perhaps", http.StatusBadRequest},
	}
	for _, c := range cases {
		status, _, body := get(t, base+c.url)
		if status != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.url, status, c.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body = %s", c.url, body)
		}
	}
	resp, err := http.Post(base+"/v1/bisection?network=bn&n=8", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestEndpointsRoundTrip exercises each endpoint once with a cheap query
// and checks the expected manifest table arrives schema-valid.
func TestEndpointsRoundTrip(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	cases := []struct {
		url   string
		table string
	}{
		{"/v1/bisection?network=bn&n=8", "bisection.bn"},
		{"/v1/bisection?network=ccc&n=8", "bisection.ccc"},
		{"/v1/expansion?kind=ee_bn&n=8&d=1&exact-nodes=64", "expansion.ee_bn"},
		{"/v1/routing?n=8&trials=3&seed=7", "routing.random"},
		{"/v1/routing?n=8&trials=3&kind=permutation", "routing.permutation"},
	}
	for _, c := range cases {
		status, _, body := get(t, base+c.url)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", c.url, status, body)
		}
		m, row := decodeResponse(t, body)
		if m.Table(c.table) == nil {
			t.Errorf("%s: missing table %s", c.url, c.table)
		}
		if row["complete"] != true {
			t.Errorf("%s: not complete: %v", c.url, row)
		}
	}
}

// TestHealthzFlipsOnDrain: 200 while serving, 503 once draining.
func TestHealthzFlipsOnDrain(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	status, _, body := get(t, base+"/healthz")
	if status != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", status, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The listener is closed now; ask the handler directly.
	if s.draining.Load() != true {
		t.Fatal("draining flag not set after Shutdown")
	}
}

// TestMetricsEndpointServesRegistry: /debug/metrics returns the live JSON
// snapshot including the serve-layer series.
func TestMetricsEndpointServesRegistry(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	get(t, base+"/v1/bisection?network=bn&n=4")
	status, _, body := get(t, base+"/debug/metrics")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, name := range []string{"serve.requests.ok", "serve.solves", "serve.cache_misses", "serve.latency_us.bisection", "runtime.goroutines", "runtime.heap_bytes"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}
}

// outcomeCount reads one serve.requests.<outcome> counter.
func outcomeCount(outcome string) int64 { return requestOutcomes[outcome].Value() }

// TestOutcomesCountedAfterValidation is the regression test for the old
// serve.requests counter firing before method/parse validation: a 400
// must increment serve.requests.400 and leave the ok counter alone, so
// rejected garbage is distinguishable from served load.
func TestOutcomesCountedAfterValidation(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)

	okBefore, badBefore := outcomeCount("ok"), outcomeCount("400")
	status, _, _ := get(t, base+"/v1/bisection?network=bn&n=7")
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	// The outcome is counted in the handler's deferred block, which can
	// run after the client sees the response; poll.
	waitFor(t, func() bool { return outcomeCount("400") == badBefore+1 },
		"400 outcome never counted")
	if got := outcomeCount("ok"); got != okBefore {
		t.Fatalf("ok counter moved on a rejected request: %d -> %d", okBefore, got)
	}

	// A served solve counts as ok; its cached repeat as cache_hit — and
	// neither touches the error outcomes.
	hitBefore := outcomeCount("cache_hit")
	if status, _, _ := get(t, base+"/v1/bisection?network=bn&n=4"); status != http.StatusOK {
		t.Fatalf("valid query status = %d", status)
	}
	waitFor(t, func() bool { return outcomeCount("ok") == okBefore+1 }, "ok outcome never counted")
	if status, source, _ := get(t, base+"/v1/bisection?network=bn&n=4"); status != http.StatusOK || source != "hit" {
		t.Fatalf("repeat: status=%d source=%q", status, source)
	}
	waitFor(t, func() bool { return outcomeCount("cache_hit") == hitBefore+1 }, "cache_hit outcome never counted")
	if got := outcomeCount("400"); got != badBefore+1 {
		t.Fatalf("400 counter moved on served requests: %d -> %d", badBefore+1, got)
	}
}

// TestRequestID: every response carries X-Request-ID — generated when
// the client sent none, echoed when it sent a well-formed one, replaced
// when it sent garbage.
func TestRequestID(t *testing.T) {
	s := New(Config{})
	base := startServer(t, s)
	url := base + "/v1/bisection?network=bn&n=4"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	generated := resp.Header.Get("X-Request-ID")
	if generated == "" {
		t.Fatal("no X-Request-ID on a plain request")
	}

	probe := func(sent string) string {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", sent)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}
	if got := probe("bench-probe-123"); got != "bench-probe-123" {
		t.Fatalf("well-formed client ID not echoed: got %q", got)
	}
	if got := probe("evil id with spaces"); got == "" || strings.ContainsAny(got, " \n") {
		t.Fatalf("malformed client ID not replaced: got %q", got)
	}
	// Errors carry IDs too — the 400 line in the access log must be
	// joinable to the client's record.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/bisection?network=bn&n=7", nil)
	req.Header.Set("X-Request-ID", "bad-req-7")
	errResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	errResp.Body.Close()
	if got := errResp.Header.Get("X-Request-ID"); got != "bad-req-7" {
		t.Fatalf("error response X-Request-ID = %q, want bad-req-7", got)
	}
}

// TestStatusz: the status endpoint answers uptime, resolved config,
// cache occupancy, outcome counters and per-endpoint µs quantiles.
func TestStatusz(t *testing.T) {
	s := New(Config{MaxInflight: 3})
	base := startServer(t, s)
	if status, _, _ := get(t, base+"/v1/bisection?network=bn&n=4"); status != http.StatusOK {
		t.Fatal("warm-up query failed")
	}
	waitFor(t, func() bool { return s.latencies["bisection"].Snapshot().Count >= 1 },
		"latency histogram never observed")

	status, _, body := get(t, base+"/debug/statusz")
	if status != http.StatusOK {
		t.Fatalf("statusz status = %d", status)
	}
	var doc struct {
		Command string  `json:"command"`
		UptimeS float64 `json:"uptime_s"`
		Config  struct {
			MaxInflight  int   `json:"max_inflight"`
			CacheEntries int   `json:"cache_entries"`
			CacheBytes   int64 `json:"cache_bytes"`
		} `json:"config"`
		Cache struct {
			Entries int64 `json:"entries"`
			Bytes   int64 `json:"bytes"`
		} `json:"cache"`
		Outcomes  map[string]int64 `json:"request_outcomes"`
		Endpoints map[string]struct {
			Count int64   `json:"count"`
			P50US float64 `json:"p50_us"`
			P99US float64 `json:"p99_us"`
			MaxUS int64   `json:"max_us"`
		} `json:"endpoints"`
		Runtime map[string]int64 `json:"runtime"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if doc.Command != "butterflyd" || doc.UptimeS < 0 {
		t.Fatalf("command=%q uptime=%v", doc.Command, doc.UptimeS)
	}
	if doc.Config.MaxInflight != 3 || doc.Config.CacheEntries != 256 {
		t.Fatalf("config = %+v, want resolved defaults", doc.Config)
	}
	if doc.Cache.Entries < 1 || doc.Cache.Bytes <= 0 {
		t.Fatalf("cache occupancy = %+v, want the warm-up entry", doc.Cache)
	}
	ep, ok := doc.Endpoints["bisection"]
	if !ok || ep.Count < 1 {
		t.Fatalf("endpoints = %+v, want bisection with count ≥ 1", doc.Endpoints)
	}
	if ep.P50US <= 0 || ep.P99US < ep.P50US || float64(ep.MaxUS) < ep.P99US {
		t.Fatalf("quantiles not sane: %+v", ep)
	}
	if doc.Runtime["runtime.goroutines"] <= 0 || doc.Runtime["runtime.heap_bytes"] <= 0 {
		t.Fatalf("runtime gauges = %+v", doc.Runtime)
	}
	if _, ok := doc.Outcomes["ok"]; !ok {
		t.Fatalf("outcomes = %+v, want an ok counter", doc.Outcomes)
	}
}

// TestAccessLog: with Config.AccessLog set, every request (rejections
// included) writes one JSONL record carrying its ID, outcome, µs latency
// and canonical key.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	s := New(Config{AccessLog: &buf})
	base := startServer(t, s)

	if status, _, _ := get(t, base+"/v1/bisection?network=bn&n=4"); status != http.StatusOK {
		t.Fatal("solve query failed")
	}
	if status, source, _ := get(t, base+"/v1/bisection?network=bn&n=4"); status != http.StatusOK || source != "hit" {
		t.Fatal("cache query failed")
	}
	if status, _, _ := get(t, base+"/v1/bisection?network=bn&n=7"); status != http.StatusBadRequest {
		t.Fatal("want a 400")
	}

	var recs []accessRecord
	waitFor(t, func() bool {
		recs = recs[:0]
		for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var rec accessRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("access log line not JSON: %v\n%s", err, line)
			}
			recs = append(recs, rec)
		}
		return len(recs) == 3
	}, "access log never reached 3 records")

	byOutcome := map[string]accessRecord{}
	for _, rec := range recs {
		if rec.ID == "" || rec.Time == "" || rec.Endpoint != "bisection" || rec.LatencyUS < 0 {
			t.Fatalf("bad record: %+v", rec)
		}
		byOutcome[rec.Outcome] = rec
	}
	okRec, hitRec, badRec := byOutcome["ok"], byOutcome["cache_hit"], byOutcome["400"]
	if okRec.Status != 200 || !okRec.Complete || okRec.Bytes <= 0 || !strings.HasPrefix(okRec.Key, "bisection?") {
		t.Fatalf("ok record: %+v", okRec)
	}
	if hitRec.Status != 200 || hitRec.Source != "hit" || hitRec.Key != okRec.Key {
		t.Fatalf("cache_hit record: %+v", hitRec)
	}
	if badRec.Status != 400 || badRec.Key != "" {
		t.Fatalf("400 record: %+v", badRec)
	}
	if okRec.ID == hitRec.ID || okRec.ID == badRec.ID {
		t.Fatalf("request IDs not unique: %q %q %q", okRec.ID, hitRec.ID, badRec.ID)
	}
	if err := s.AccessLogErr(); err != nil {
		t.Fatalf("access log error: %v", err)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the access logger writes
// from handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
