package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Registry metrics of the result cache. /debug/metrics serves them live,
// and the CI smoke test asserts a repeated query lands as a hit.
var (
	metricCacheHits      = obs.NewCounter("serve.cache_hits")
	metricCacheMisses    = obs.NewCounter("serve.cache_misses")
	metricCacheEvictions = obs.NewCounter("serve.cache_evictions")
	metricCacheOversized = obs.NewCounter("serve.cache_oversized")
	metricCacheSize      = obs.NewGauge("serve.cache_size")
	metricCacheBytes     = obs.NewGauge("serve.cache_bytes")
)

// lruCache is the bounded result cache: canonical request key → rendered
// response. get promotes its key to most-recently-used; put evicts
// least-recently-used entries past EITHER bound — entry count or
// approximate byte size. The count bound alone is no memory bound at all
// (a handful of 2^20-row report manifests is gigabytes at 256 entries),
// so both are enforced. Entries are immutable once stored (handlers
// serve the cached bytes verbatim), so the cache hands out shared
// pointers without copying.
//
// Evicted entries are offered to onEvict (outside the lock) — the hook
// the persistent store uses to catch spills, so "fell out of memory"
// degrades to "one disk read" instead of "one solve".
type lruCache struct {
	mu       sync.Mutex
	limit    int
	maxBytes int64
	bytes    int64
	m        map[string]*list.Element
	order    *list.List // front = least recently used, back = most recent
	onEvict  func(key string, resp *response)
}

type lruEntry struct {
	key  string
	resp *response
}

// size is the entry's approximate memory footprint: the rendered body
// plus the key (struct overhead is noise next to multi-KB manifests).
func (e *lruEntry) size() int64 { return int64(len(e.key) + len(e.resp.body)) }

func newLRUCache(limit int, maxBytes int64, onEvict func(key string, resp *response)) *lruCache {
	return &lruCache{
		limit:    limit,
		maxBytes: maxBytes,
		m:        make(map[string]*list.Element, limit),
		order:    list.New(),
		onEvict:  onEvict,
	}
}

// get returns the cached response for key, promoting it to
// most-recently-used. The hit/miss counters are maintained here so every
// lookup path is counted identically.
func (c *lruCache) get(key string) (*response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		metricCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToBack(el)
	metricCacheHits.Inc()
	return el.Value.(*lruEntry).resp, true
}

// put stores resp under key, evicting least-recently-used entries while
// either bound is exceeded. Re-putting an existing key replaces its value
// and promotes it. Evicted entries are handed to onEvict after the lock
// is released (the spill path writes to disk; that never belongs under a
// cache mutex).
//
// An entry larger than the whole byte budget never becomes resident: it
// spills straight to onEvict and the current residents stay put. (The
// naive path would admit it and then evict from the LRU front until the
// budget held — emptying the entire cache, oversized entry included, so
// one 2^20-row manifest would purge every hot entry and still not be
// cached.)
func (c *lruCache) put(key string, resp *response) {
	var spilled []*lruEntry
	c.mu.Lock()
	if int64(len(key)+len(resp.body)) > c.maxBytes {
		if el, ok := c.m[key]; ok {
			// A stale smaller resident under the same key would shadow
			// the spilled copy on future gets; drop it.
			entry := el.Value.(*lruEntry)
			c.order.Remove(el)
			delete(c.m, key)
			c.bytes -= entry.size()
		}
		metricCacheOversized.Inc()
		metricCacheSize.Set(int64(c.order.Len()))
		metricCacheBytes.Set(c.bytes)
		c.mu.Unlock()
		if c.onEvict != nil {
			c.onEvict(key, resp)
		}
		return
	}
	if el, ok := c.m[key]; ok {
		entry := el.Value.(*lruEntry)
		c.bytes -= entry.size()
		entry.resp = resp
		c.bytes += entry.size()
		c.order.MoveToBack(el)
	} else {
		c.m[key] = c.order.PushBack(&lruEntry{key: key, resp: resp})
		c.bytes += int64(len(key) + len(resp.body))
	}
	for c.order.Len() > 0 && (c.order.Len() > c.limit || c.bytes > c.maxBytes) {
		oldest := c.order.Front()
		entry := oldest.Value.(*lruEntry)
		c.order.Remove(oldest)
		delete(c.m, entry.key)
		c.bytes -= entry.size()
		metricCacheEvictions.Inc()
		spilled = append(spilled, entry)
	}
	metricCacheSize.Set(int64(c.order.Len()))
	metricCacheBytes.Set(c.bytes)
	c.mu.Unlock()

	if c.onEvict != nil {
		for _, e := range spilled {
			c.onEvict(e.key, e.resp)
		}
	}
}

// len reports the number of cached responses.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// totalBytes reports the approximate cached byte size.
func (c *lruCache) totalBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// snapshot returns every cached (key, response) pair, most recently used
// last — the drain-time flush walks it to persist what is still hot.
func (c *lruCache) snapshot() []lruEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*lruEntry))
	}
	return out
}
