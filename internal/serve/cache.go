package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Registry metrics of the result cache. /debug/metrics serves them live,
// and the CI smoke test asserts a repeated query lands as a hit.
var (
	metricCacheHits      = obs.NewCounter("serve.cache_hits")
	metricCacheMisses    = obs.NewCounter("serve.cache_misses")
	metricCacheEvictions = obs.NewCounter("serve.cache_evictions")
	metricCacheSize      = obs.NewGauge("serve.cache_size")
)

// lruCache is the bounded result cache: canonical request key → rendered
// response. get promotes its key to most-recently-used, put evicts the
// least-recently-used entry past the limit. Entries are immutable once
// stored (handlers serve the cached bytes verbatim), so the cache hands
// out shared pointers without copying.
type lruCache struct {
	mu    sync.Mutex
	limit int
	m     map[string]*list.Element
	order *list.List // front = least recently used, back = most recent
}

type lruEntry struct {
	key  string
	resp *response
}

func newLRUCache(limit int) *lruCache {
	return &lruCache{
		limit: limit,
		m:     make(map[string]*list.Element, limit),
		order: list.New(),
	}
}

// get returns the cached response for key, promoting it to
// most-recently-used. The hit/miss counters are maintained here so every
// lookup path is counted identically.
func (c *lruCache) get(key string) (*response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		metricCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToBack(el)
	metricCacheHits.Inc()
	return el.Value.(*lruEntry).resp, true
}

// put stores resp under key, evicting the least-recently-used entry when
// the cache is full. Re-putting an existing key replaces its value and
// promotes it.
func (c *lruCache) put(key string, resp *response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToBack(el)
		return
	}
	c.m[key] = c.order.PushBack(&lruEntry{key: key, resp: resp})
	if c.order.Len() > c.limit {
		oldest := c.order.Front()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
		metricCacheEvictions.Inc()
	}
	metricCacheSize.Set(int64(c.order.Len()))
}

// len reports the number of cached responses.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
