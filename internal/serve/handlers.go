package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/route"
)

// queryRequest is one parsed, validated API request. Key is its canonical
// identity — defaults filled in, parameters in a fixed order — so the
// cache and the coalescing group see through spelling differences
// (&n=8&network=bn vs &network=bn&n=8, explicit vs defaulted values).
// The solve budget (timeout) is deliberately not part of the identity:
// only complete answers are cached, and a complete answer is the same
// under any budget.
type queryRequest interface {
	Key() string
	Solve(ctx context.Context, s *Server) (*obs.Manifest, error)
}

// queryValues wraps url.Values with defaulting, validating accessors.
type queryValues url.Values

// allow rejects parameters outside the endpoint's vocabulary, so a typo
// ("trails=1000") fails loudly instead of silently running the default.
func (q queryValues) allow(names ...string) error {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	var unknown []string
	for name := range q {
		if !allowed[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("unknown parameter %q (known: %s)", unknown[0], strings.Join(names, ", "))
}

func (q queryValues) str(name, def string) string {
	if vs := q[name]; len(vs) > 0 && vs[0] != "" {
		return vs[0]
	}
	return def
}

func (q queryValues) intVal(name string, def int) (int, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not an integer", name, raw)
	}
	return v, nil
}

func (q queryValues) int64Val(name string, def int64) (int64, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not an integer", name, raw)
	}
	return v, nil
}

func (q queryValues) boolVal(name string, def bool) (bool, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("%s: %q is not a boolean", name, raw)
	}
	return v, nil
}

// deadline resolves the request's solve budget: the timeout parameter
// (Go duration syntax), defaulted to def and capped — never rejected — at
// max, mirroring how a CLI -timeout above the wall clock just means "all
// the time there is".
func (q queryValues) deadline(def, max time.Duration) (time.Duration, error) {
	raw := q.str("timeout", "")
	if raw == "" {
		return def, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("timeout: %q is not a duration (want e.g. 500ms, 5s)", raw)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout: must be positive (got %s)", raw)
	}
	if d > max {
		d = max
	}
	return d, nil
}

// floatVal parses one float parameter.
func (q queryValues) floatVal(name string, def float64) (float64, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a number", name, raw)
	}
	return v, nil
}

// floatList parses a comma-separated float list ("0,0.05,0.1").
func (q queryValues) floatList(name string, def []float64) ([]float64, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	parts := strings.Split(raw, ",")
	vals := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not a number list", name, raw)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// dimList parses a comma-separated dimension list ("1,2,3").
func (q queryValues) dimList(name string, def []int) ([]int, error) {
	raw := q.str(name, "")
	if raw == "" {
		return def, nil
	}
	parts := strings.Split(raw, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not an integer list", name, raw)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func powerOfTwoInRange(name string, v, lo, hi int) error {
	if v < lo || v > hi || v&(v-1) != 0 {
		return fmt.Errorf("%s: must be a power of two in [%d, %d] (got %d)", name, lo, hi, v)
	}
	return nil
}

// ---- /v1/bisection ----

// bisectionRequest answers BW queries on one network instance: the same
// rows bwtable prints, one network per request.
type bisectionRequest struct {
	network    string // "bn" | "wn" | "ccc"
	n          int
	exactNodes int
}

func parseBisectionRequest(q queryValues) (queryRequest, error) {
	if err := q.allow("network", "n", "exact-nodes", "timeout"); err != nil {
		return nil, err
	}
	r := &bisectionRequest{network: q.str("network", "bn")}
	var err error
	if r.n, err = q.intVal("n", 0); err != nil {
		return nil, err
	}
	if r.exactNodes, err = q.intVal("exact-nodes", 32); err != nil {
		return nil, err
	}
	if r.exactNodes < 0 || r.exactNodes > 4096 {
		return nil, fmt.Errorf("exact-nodes: must be in [0, 4096] (got %d)", r.exactNodes)
	}
	switch r.network {
	case "bn":
		// Large sizes stay cheap: beyond the materialization budget the
		// constructed row is verified by the word-parallel virtual
		// evaluator, so million-column butterflies are servable.
		err = powerOfTwoInRange("n", r.n, 2, 1<<22)
	case "wn":
		err = powerOfTwoInRange("n", r.n, 4, 1<<14)
	case "ccc":
		err = powerOfTwoInRange("n", r.n, 8, 1<<14)
	default:
		err = fmt.Errorf("network: want bn, wn or ccc (got %q)", r.network)
	}
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (r *bisectionRequest) Key() string {
	return fmt.Sprintf("network=%s&n=%d&exact-nodes=%d", r.network, r.n, r.exactNodes)
}

func (r *bisectionRequest) Solve(ctx context.Context, s *Server) (*obs.Manifest, error) {
	budget := core.BisectionBudget{
		ExactNodes: r.exactNodes,
		Ctx:        ctx,
		Trace:      s.cfg.Trace,
	}
	m := obs.NewManifest("butterflyd")
	var rep core.BisectionReport
	var err error
	switch r.network {
	case "bn":
		rep, err = core.ButterflyBisection(r.n, budget)
		if err != nil {
			return nil, err
		}
	case "wn":
		rep = core.WrappedBisection(r.n, budget)
	case "ccc":
		rep = core.CCCBisection(r.n, budget)
	}
	m.AddTable("bisection."+r.network, rep.TheoryLabel, []core.BisectionReport{rep})
	return m, nil
}

// ---- /v1/expansion ----

// expansionRequest answers one §4.3 expansion table: witness upper
// bounds, credit-certified lower bounds, and exact optima where the
// budget allows.
type expansionRequest struct {
	kind       core.ExpansionKind
	n          int
	dims       []int
	exactNodes int
	kmax       int
}

func parseExpansionRequest(q queryValues) (queryRequest, error) {
	if err := q.allow("kind", "n", "d", "exact-nodes", "kmax", "timeout"); err != nil {
		return nil, err
	}
	r := &expansionRequest{}
	kind, err := core.ParseExpansionKind(q.str("kind", ""))
	if err != nil {
		return nil, fmt.Errorf("kind: want ee_wn, ne_wn, ee_bn or ne_bn")
	}
	r.kind = kind
	if r.n, err = q.intVal("n", 0); err != nil {
		return nil, err
	}
	if err = powerOfTwoInRange("n", r.n, 8, 4096); err != nil {
		return nil, err
	}
	maxDim := core.MaxWitnessDim(r.kind, r.n)
	if maxDim < 1 {
		return nil, fmt.Errorf("n: %d is too small for %s witnesses", r.n, r.kind)
	}
	defDims := make([]int, 0, 4)
	for d := 1; d <= maxDim && d <= 4; d++ {
		defDims = append(defDims, d)
	}
	if r.dims, err = q.dimList("d", defDims); err != nil {
		return nil, err
	}
	for _, d := range r.dims {
		if d < 1 || d > maxDim {
			return nil, fmt.Errorf("d: witness dimension %d out of range [1, %d] for %s on n=%d", d, maxDim, r.kind, r.n)
		}
	}
	if r.exactNodes, err = q.intVal("exact-nodes", 32); err != nil {
		return nil, err
	}
	if r.exactNodes < 0 || r.exactNodes > 4096 {
		return nil, fmt.Errorf("exact-nodes: must be in [0, 4096] (got %d)", r.exactNodes)
	}
	if r.kmax, err = q.intVal("kmax", 8); err != nil {
		return nil, err
	}
	if r.kmax < 1 || r.kmax > 32 {
		return nil, fmt.Errorf("kmax: must be in [1, 32] (got %d)", r.kmax)
	}
	return r, nil
}

func (r *expansionRequest) Key() string {
	dims := make([]string, len(r.dims))
	for i, d := range r.dims {
		dims[i] = strconv.Itoa(d)
	}
	return fmt.Sprintf("kind=%s&n=%d&d=%s&exact-nodes=%d&kmax=%d",
		r.kind.Slug(), r.n, strings.Join(dims, ","), r.exactNodes, r.kmax)
}

func (r *expansionRequest) Solve(ctx context.Context, s *Server) (*obs.Manifest, error) {
	rows := core.ExpansionTable(r.kind, r.n, r.dims, core.ExpansionTableOptions{
		ExactNodes: r.exactNodes,
		KMax:       r.kmax,
		Ctx:        ctx,
		Trace:      s.cfg.Trace,
	})
	m := obs.NewManifest("butterflyd")
	m.AddTable("expansion."+r.kind.Slug(), fmt.Sprintf("%s (§4.3)", r.kind), rows)
	return m, nil
}

// ---- /v1/routing ----

// routingRequest answers E8 Monte-Carlo rows: multi-trial routing on Bn
// against the bisection-bound floor, optionally under the fault model —
// lossy links (drop accepts a comma-separated rate list, producing the
// whole degradation curve in one query), bounded retransmission, dead
// links, adversarial patterns, and cut-through switching.
type routingRequest struct {
	kind        route.TrialKind
	n           int
	trials      int
	seed        int64
	drops       []float64
	dead        float64
	retransmits int
	switching   route.Switching
}

func parseRoutingRequest(q queryValues) (queryRequest, error) {
	if err := q.allow("kind", "n", "trials", "seed", "drop", "dead", "retransmits", "switching", "timeout"); err != nil {
		return nil, err
	}
	r := &routingRequest{}
	kind, err := route.ParseTrialKind(q.str("kind", "random"))
	if err != nil || kind == route.WrappedRandomDestinations {
		return nil, fmt.Errorf("kind: want random, permutation, hotspot or bitreversal (got %q)", q.str("kind", "random"))
	}
	r.kind = kind
	if r.n, err = q.intVal("n", 0); err != nil {
		return nil, err
	}
	if err = powerOfTwoInRange("n", r.n, 2, 4096); err != nil {
		return nil, err
	}
	if r.trials, err = q.intVal("trials", 25); err != nil {
		return nil, err
	}
	if r.trials < 1 || r.trials > 100000 {
		return nil, fmt.Errorf("trials: must be in [1, 100000] (got %d)", r.trials)
	}
	if r.seed, err = q.int64Val("seed", 1); err != nil {
		return nil, err
	}
	if r.drops, err = q.floatList("drop", []float64{0}); err != nil {
		return nil, err
	}
	if len(r.drops) > 16 {
		return nil, fmt.Errorf("drop: at most 16 rates per sweep (got %d)", len(r.drops))
	}
	if r.dead, err = q.floatVal("dead", 0); err != nil {
		return nil, err
	}
	if r.retransmits, err = q.intVal("retransmits", 0); err != nil {
		return nil, err
	}
	sw, err := route.ParseSwitching(q.str("switching", "sf"))
	if err != nil {
		return nil, err
	}
	r.switching = sw
	for _, p := range r.drops {
		f := route.FaultOptions{DropProb: p, DeadLinkProb: r.dead, MaxRetransmits: r.retransmits}
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// faulty reports whether the request leaves the healthy single-row path:
// any fault knob set, a drop sweep, or a non-default switch discipline.
func (r *routingRequest) faulty() bool {
	return len(r.drops) > 1 || r.drops[0] > 0 || r.dead > 0 ||
		r.retransmits > 0 || r.switching != route.StoreAndForward
}

func (r *routingRequest) Key() string {
	drops := make([]string, len(r.drops))
	for i, p := range r.drops {
		drops[i] = strconv.FormatFloat(p, 'g', -1, 64)
	}
	return fmt.Sprintf("kind=%s&n=%d&trials=%d&seed=%d&drop=%s&dead=%s&retransmits=%d&switching=%s",
		r.kind.Slug(), r.n, r.trials, r.seed, strings.Join(drops, ","),
		strconv.FormatFloat(r.dead, 'g', -1, 64), r.retransmits, r.switching.Slug())
}

func (r *routingRequest) Solve(ctx context.Context, s *Server) (*obs.Manifest, error) {
	opt := core.RoutingOptions{
		Trials: r.trials, Ctx: ctx, Trace: s.cfg.Trace,
		Fault:     route.FaultOptions{DeadLinkProb: r.dead, MaxRetransmits: r.retransmits},
		Switching: r.switching,
	}
	rows := core.RoutingDegradation(r.n, r.seed, r.kind, r.drops, opt)
	converged, exhausted := 0, 0
	for _, rep := range rows {
		converged += rep.Stats.Trials
		exhausted += rep.Stats.ExhaustedTrials
	}
	if converged == 0 && exhausted > 0 {
		// Every requested trial hit the step limit: there is no aggregate
		// to serve. 422 — the parameters were valid but unprocessable at
		// this fault intensity; a panic here used to kill the daemon.
		return nil, &httpError{http.StatusUnprocessableEntity,
			fmt.Sprintf("all %d trials exhausted the %s step limit; lower drop or bound retransmits", exhausted, "64·N")}
	}
	m := obs.NewManifest("butterflyd")
	m.Seed = r.seed
	table := "routing." + r.kind.Slug()
	title := "E8: routing vs bisection bound (§1.2)"
	if r.faulty() {
		table = "routing.faults"
		title = "E8: routing under faults (§1.2 degradation)"
	}
	m.AddTable(table, title, rows)
	return m, nil
}

// ---- /v1/report ----

// reportRequest answers the full E1–E17 reproduction as one manifest —
// the paperrepro -json document, served.
type reportRequest struct {
	quick bool
	seed  int64
}

func parseReportRequest(q queryValues) (queryRequest, error) {
	if err := q.allow("quick", "seed", "timeout"); err != nil {
		return nil, err
	}
	r := &reportRequest{}
	var err error
	if r.quick, err = q.boolVal("quick", true); err != nil {
		return nil, err
	}
	if r.seed, err = q.int64Val("seed", 1); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *reportRequest) Key() string {
	return fmt.Sprintf("quick=%t&seed=%d", r.quick, r.seed)
}

func (r *reportRequest) Solve(ctx context.Context, s *Server) (*obs.Manifest, error) {
	rep, err := core.BuildFullReport(core.ReportOptions{
		Quick: r.quick,
		Seed:  r.seed,
		Ctx:   ctx,
		Trace: s.cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	m := obs.NewManifest("butterflyd")
	m.Seed = r.seed
	rep.AppendManifestTables(m)
	return m, nil
}
