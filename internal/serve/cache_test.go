package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// unbounded is a byte budget no cache-test entry can exceed, so the
// entry-count bound is the one under test.
const unbounded = 1 << 30

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(2, unbounded, nil)
	a, b, d := &response{body: []byte("a")}, &response{body: []byte("b")}, &response{body: []byte("d")}
	c.put("a", a)
	c.put("b", b)
	if _, ok := c.get("a"); !ok { // promotes a over b
		t.Fatal("a missing")
	}
	c.put("d", d) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being least recently used")
	}
	if got, ok := c.get("a"); !ok || string(got.body) != "a" {
		t.Fatal("promoted entry a was evicted")
	}
	if got, ok := c.get("d"); !ok || string(got.body) != "d" {
		t.Fatal("fresh entry d missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUCacheReplaceExisting(t *testing.T) {
	c := newLRUCache(2, unbounded, nil)
	c.put("k", &response{body: []byte("v1")})
	c.put("k", &response{body: []byte("v2")})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	got, ok := c.get("k")
	if !ok || string(got.body) != "v2" {
		t.Fatalf("got %q, want v2", got.body)
	}
}

// TestLRUCacheByteBound: the cache evicts on approximate byte size even
// when far under the entry-count limit — the guard against a handful of
// huge report manifests blowing memory at "only" 256 entries.
func TestLRUCacheByteBound(t *testing.T) {
	var spilled []string
	c := newLRUCache(256, 1000, func(key string, resp *response) {
		spilled = append(spilled, key)
	})
	big := func(n int) *response { return &response{body: make([]byte, n), complete: true} }
	c.put("a", big(400))
	c.put("b", big(400))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2 (under both bounds)", c.len())
	}
	c.put("c", big(400)) // ~1203 bytes: evict "a", the LRU entry
	if _, ok := c.get("a"); ok {
		t.Fatal("byte bound did not evict the oldest entry")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("byte bound over-evicted")
	}
	if got := c.totalBytes(); got > 1000 {
		t.Fatalf("totalBytes = %d, want ≤ 1000", got)
	}
	if len(spilled) != 1 || spilled[0] != "a" {
		t.Fatalf("spilled = %v, want [a]", spilled)
	}

	// An entry bigger than the whole budget spills straight to the store
	// and never becomes resident — the smaller residents survive. (The
	// old behavior admitted it and then drained the LRU front until the
	// budget held, purging every hot entry including the oversized one.)
	c.put("huge", big(5000))
	if c.len() != 2 {
		t.Fatalf("len = %d after over-budget put, want 2 (residents kept)", c.len())
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("oversized put evicted resident b")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("oversized put evicted resident c")
	}
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry became resident")
	}
	if want := []string{"a", "huge"}; len(spilled) != 2 || spilled[1] != "huge" {
		t.Fatalf("spilled = %v, want %v", spilled, want)
	}
}

// TestLRUCacheOversizedDoesNotEmptyCache is the regression test for the
// eviction bug: one response exceeding maxBytes must leave every smaller
// resident in place, reach the spill hook exactly once, and keep the
// byte accounting intact.
func TestLRUCacheOversizedDoesNotEmptyCache(t *testing.T) {
	var spilled []string
	c := newLRUCache(256, 1000, func(key string, resp *response) {
		spilled = append(spilled, key)
	})
	body := func(n int) *response { return &response{body: make([]byte, n), complete: true} }
	c.put("hot1", body(300))
	c.put("hot2", body(300))
	before := c.totalBytes()

	c.put("manifest", body(4000))
	if c.len() != 2 {
		t.Fatalf("oversized put emptied the cache: len = %d, want 2", c.len())
	}
	if got := c.totalBytes(); got != before {
		t.Fatalf("totalBytes = %d, want %d (unchanged)", got, before)
	}
	if len(spilled) != 1 || spilled[0] != "manifest" {
		t.Fatalf("spilled = %v, want [manifest]", spilled)
	}
	for _, k := range []string{"hot1", "hot2"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("resident %q lost to an oversized put", k)
		}
	}
}

// TestLRUCacheOversizedReplacesStaleResident: if a smaller response was
// resident under the key and a re-put grows past the budget, the stale
// resident is dropped (a later get must fall through to the spilled
// copy, not serve the outdated body).
func TestLRUCacheOversizedReplacesStaleResident(t *testing.T) {
	var spilled []string
	c := newLRUCache(256, 1000, func(key string, resp *response) {
		spilled = append(spilled, key)
	})
	c.put("k", &response{body: []byte("small"), complete: true})
	c.put("other", &response{body: []byte("x"), complete: true})
	c.put("k", &response{body: make([]byte, 4000), complete: true})
	if _, ok := c.get("k"); ok {
		t.Fatal("stale small resident still served under the grown key")
	}
	if _, ok := c.get("other"); !ok {
		t.Fatal("unrelated resident evicted")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if len(spilled) != 1 || spilled[0] != "k" {
		t.Fatalf("spilled = %v, want [k]", spilled)
	}
}

// TestLRUCacheReplaceAdjustsBytes: re-putting a key swaps its byte
// accounting, it does not leak the old size.
func TestLRUCacheReplaceAdjustsBytes(t *testing.T) {
	c := newLRUCache(4, unbounded, nil)
	c.put("k", &response{body: make([]byte, 100)})
	c.put("k", &response{body: make([]byte, 10)})
	if got := c.totalBytes(); got != int64(len("k"))+10 {
		t.Fatalf("totalBytes = %d, want %d", got, len("k")+10)
	}
}

func TestFlightGroupCoalescesConcurrentCalls(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	started := make(chan struct{})
	var solves int

	const followers = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	sharedCount := 0

	// Leader: blocks in fn until the gate opens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, shared, err := g.do(context.Background(), "k", func() (*response, error) {
			close(started)
			<-gate
			solves++
			return &response{body: []byte("r")}, nil
		})
		if err != nil || shared || string(resp.body) != "r" {
			t.Errorf("leader: resp=%v shared=%v err=%v", resp, shared, err)
		}
	}()
	<-started

	before := metricCoalesced.Value()
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, shared, err := g.do(context.Background(), "k", func() (*response, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
			if err != nil || string(resp.body) != "r" {
				t.Errorf("follower: resp=%v err=%v", resp, err)
			}
			if shared {
				mu.Lock()
				sharedCount++
				mu.Unlock()
			}
		}()
	}
	// Wait for every follower to attach before releasing the leader.
	waitFor(t, func() bool { return metricCoalesced.Value()-before >= followers },
		"followers never attached")
	close(gate)
	wg.Wait()
	if solves != 1 {
		t.Fatalf("fn ran %d times, want 1", solves)
	}
	if sharedCount != followers {
		t.Fatalf("%d of %d followers reported shared", sharedCount, followers)
	}
}

func TestFlightGroupFollowerContextCancel(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = g.do(context.Background(), "k", func() (*response, error) {
			close(started)
			<-gate
			return &response{}, nil
		})
	}()
	<-started
	defer close(gate)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.do(ctx, "k", func() (*response, error) { return &response{}, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("shared=%v err=%v, want shared follower with context.Canceled", shared, err)
	}
}

func TestFlightGroupSequentialCallsDoNotShare(t *testing.T) {
	g := newFlightGroup()
	for i := 0; i < 2; i++ {
		resp, shared, err := g.do(context.Background(), "k", func() (*response, error) {
			return &response{body: []byte(fmt.Sprint(i))}, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
		if string(resp.body) != fmt.Sprint(i) {
			t.Fatalf("call %d returned stale result %q", i, resp.body)
		}
	}
}
