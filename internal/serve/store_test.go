package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
)

// rget drives one request through the server's handler directly (no
// listener): status, X-Cache source, body.
func rget(t *testing.T, s *Server, path string) (int, string, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Header().Get("X-Cache"), rec.Body.Bytes()
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// scrubTelemetry strips the per-run fields (elapsed_ms at every level,
// solver explored/pruned work counters, the requesting budget's
// deadline_ms) from a response body, the same scrub the golden manifest
// tests use — everything else must be byte-deterministic across runs.
func scrubTelemetry(t *testing.T, body []byte) []byte {
	t.Helper()
	var doc interface{}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	var walk func(v interface{})
	walk = func(v interface{}) {
		switch v := v.(type) {
		case map[string]interface{}:
			for _, f := range []string{"elapsed_ms", "explored", "pruned", "deadline_ms"} {
				delete(v, f)
			}
			for _, child := range v {
				walk(child)
			}
		case []interface{}:
			for _, child := range v {
				walk(child)
			}
		}
	}
	walk(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWarmStartAcrossRestart is the acceptance test for the persistent
// store: stop a daemon, start a fresh one on the same directory, and the
// first query for anything the old process solved answers from disk —
// byte-identical, no solver invoked.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	const path = "/v1/bisection?network=wn&n=16"

	st1 := openStore(t, dir)
	s1 := New(Config{Store: st1})
	status, source, body1 := rget(t, s1, path)
	if status != http.StatusOK || source != "miss" {
		t.Fatalf("first process: status=%d source=%q", status, source)
	}
	// Shutdown flushes the drained cache into the store (the warm-start
	// snapshot), then the store closes cleanly.
	shutdown(t, s1)
	if !st1.Has("bisection?network=wn&n=16&exact-nodes=32") {
		t.Fatal("drain did not flush the cached solve to the store")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new store handle and server over the same dir.
	st2 := openStore(t, dir)
	defer st2.Close()
	s2 := New(Config{Store: st2})
	solvesBefore := metricSolves.Value()
	status, source, body2 := rget(t, s2, path)
	if status != http.StatusOK || source != "store-hit" {
		t.Fatalf("restarted process: status=%d source=%q", status, source)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("restarted response differs from the original:\n%s\nvs\n%s", body1, body2)
	}
	if got := metricSolves.Value() - solvesBefore; got != 0 {
		t.Fatalf("restarted process ran %d solves, want 0 (disk only)", got)
	}

	// The store-hit re-warmed the LRU: a repeat is a plain memory hit.
	if _, source, _ = rget(t, s2, path); source != "hit" {
		t.Fatalf("repeat after store-hit: source=%q, want hit", source)
	}
	shutdown(t, s2)
}

// TestEvictionSpillsToStore: falling out of the LRU demotes a result to
// disk instead of discarding it — re-querying it is a store-hit, not a
// re-solve.
func TestEvictionSpillsToStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	s := New(Config{Store: st, CacheEntries: 1})
	const pathA = "/v1/bisection?network=wn&n=4"
	const pathB = "/v1/bisection?network=wn&n=8"

	spillsBefore := metricCacheSpills.Value()
	rget(t, s, pathA)
	rget(t, s, pathB) // evicts A from the one-entry LRU → spill
	if got := metricCacheSpills.Value() - spillsBefore; got != 1 {
		t.Fatalf("cache_spills advanced by %d, want 1", got)
	}
	if !st.Has("bisection?network=wn&n=4&exact-nodes=32") {
		t.Fatal("evicted entry missing from the store")
	}

	solvesBefore := metricSolves.Value()
	status, source, _ := rget(t, s, pathA)
	if status != http.StatusOK || source != "store-hit" {
		t.Fatalf("evicted key: status=%d source=%q, want store-hit", status, source)
	}
	if got := metricSolves.Value() - solvesBefore; got != 0 {
		t.Fatalf("evicted key re-solved %d times, want 0", got)
	}
	shutdown(t, s)
}

// TestIncompleteResponsesNeverSpill: budget-truncated answers are barred
// from the store exactly as from the cache — a truncated row on disk
// could mask the full answer forever.
func TestIncompleteResponsesNeverSpill(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	s := New(Config{Store: st, CacheEntries: 1})
	// The incomplete solve is not cached, so fabricate the spill directly:
	// the guard is in spill itself.
	if s.spill("bisection?network=bn&n=16&exact-nodes=128", &response{body: []byte("{}"), complete: false}) {
		t.Fatal("spill persisted an incomplete response")
	}
	if st.Len() != 0 {
		t.Fatalf("store holds %d records, want 0", st.Len())
	}
}

// TestPrecomputeFillsStore: a batch fill solves every missing grid point
// once, a rerun skips them all, and a fresh server over the filled store
// answers the grid from disk with responses equivalent (modulo wall-clock
// telemetry) to a live solve.
func TestPrecomputeFillsStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	batch := New(Config{Store: st})

	grid, err := ParseGrid("wn:2-3,bn:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 {
		t.Fatalf("grid has %d points, want 3", len(grid))
	}
	res, err := batch.Precompute(context.Background(), grid, 2, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved != 3 || res.Skipped != 0 || res.Failed != 0 {
		t.Fatalf("first fill: %+v, want 3 solved", res)
	}
	res, err = batch.Precompute(context.Background(), grid, 2, t.Logf)
	if err != nil || res.Skipped != 3 || res.Solved != 0 {
		t.Fatalf("refill: %+v err=%v, want 3 skipped", res, err)
	}

	// A fresh server over the filled store serves the grid from disk.
	warm := New(Config{Store: st})
	solvesBefore := metricSolves.Value()
	status, source, body := rget(t, warm, "/v1/bisection?network=wn&n=8")
	if status != http.StatusOK || source != "store-hit" {
		t.Fatalf("precomputed query: status=%d source=%q", status, source)
	}
	if got := metricSolves.Value() - solvesBefore; got != 0 {
		t.Fatalf("precomputed query ran %d solves, want 0", got)
	}

	// And the stored body matches a live solve, telemetry scrubbed.
	cold := New(Config{})
	_, _, fresh := rget(t, cold, "/v1/bisection?network=wn&n=8")
	if got, want := scrubTelemetry(t, body), scrubTelemetry(t, fresh); !bytes.Equal(got, want) {
		t.Fatalf("precomputed body diverges from a live solve:\n%s\nvs\n%s", got, want)
	}
}

// TestPrecomputeRequiresStore: batch mode without -store is a config
// error, not a silent no-op.
func TestPrecomputeRequiresStore(t *testing.T) {
	s := New(Config{})
	if _, err := s.Precompute(context.Background(), []GridPoint{{Network: "bn", LogN: 2, ExactNodes: 32}}, 1, nil); err == nil {
		t.Fatal("precompute without a store did not error")
	}
}

func TestParseGrid(t *testing.T) {
	grid, err := ParseGrid("bn:3-5, wn:2:0 ,ccc:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []GridPoint{
		{Network: "bn", LogN: 3, ExactNodes: 32},
		{Network: "bn", LogN: 4, ExactNodes: 32},
		{Network: "bn", LogN: 5, ExactNodes: 32},
		{Network: "wn", LogN: 2, ExactNodes: 0},
		{Network: "ccc", LogN: 3, ExactNodes: 32},
	}
	if !reflect.DeepEqual(grid, want) {
		t.Fatalf("grid = %+v\nwant %+v", grid, want)
	}

	bad := []string{
		"",                // empty
		"bn",              // no range
		"bn:5-3",          // inverted range
		"bn:0-2",          // below log range
		"bn:2-99",         // above log range
		"zz:2-3",          // unknown network
		"bn:2-3:abc",      // bad exact-nodes
		"bn:2-3:9999999",  // exact-nodes out of endpoint range
		"wn:1",            // n=2 below wn's minimum
		"bn:2-3,,bad:::x", // malformed entry
	}
	for _, spec := range bad {
		if _, err := ParseGrid(spec); err == nil {
			t.Errorf("ParseGrid(%q) accepted an invalid spec", spec)
		}
	}
}
