package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// accessRecord is one line of the structured access log: everything
// needed to reconstruct a request's fate without the response body —
// who asked what, which path answered it (cache, store, coalesced solve,
// rejection), how long it took at µs resolution, and the request ID that
// joins the line to its trace spans and to the client's own records.
type accessRecord struct {
	Time      string `json:"ts"`
	ID        string `json:"id"`
	Endpoint  string `json:"endpoint"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Remote    string `json:"remote,omitempty"`
	Key       string `json:"key,omitempty"`
	Status    int    `json:"status"`
	Outcome   string `json:"outcome"`
	Source    string `json:"source,omitempty"`
	Complete  bool   `json:"complete"`
	LatencyUS int64  `json:"latency_us"`
	Bytes     int    `json:"bytes"`
}

// accessLogger serializes accessRecords as JSONL under a mutex, the same
// discipline as obs.Tracer: one self-contained JSON object per line,
// sticky sink errors, and total nil-safety — logging disabled is a nil
// *accessLogger, not a branch at every call site.
type accessLogger struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// newAccessLogger wraps sink; a nil sink disables logging.
func newAccessLogger(sink io.Writer) *accessLogger {
	if sink == nil {
		return nil
	}
	return &accessLogger{w: sink}
}

// log writes one record. Sink errors are sticky and stop emission:
// access logging is an aid, never a reason to fail a request.
func (l *accessLogger) log(rec accessRecord) {
	if l == nil {
		return
	}
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		return
	}
	data = append(data, '\n')
	if _, err := l.w.Write(data); err != nil {
		l.err = err
	}
}

// Err returns the sticky sink error, if any (for end-of-run reporting).
func (l *accessLogger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
