package serve

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metricPrecomputed counts grid points the precompute driver solved and
// stored (skips and failures excluded).
var metricPrecomputed = obs.NewCounter("serve.precomputed")

// GridPoint is one declared bisection instance of a precompute grid: the
// (network, size, exact-budget) triple butterflyd -precompute fills the
// store for ahead of traffic.
type GridPoint struct {
	Network    string
	LogN       int
	ExactNodes int
}

// N returns the instance's column count.
func (p GridPoint) N() int { return 1 << p.LogN }

// ParseGrid parses a -precompute grid spec. The grammar is a
// comma-separated list of ranges over log2(n):
//
//	network:lo-hi[:exact-nodes]
//
// e.g. "bn:12-20,wn:4-10:0,ccc:3-8" — butterflies from 2^12 to 2^20
// columns (the constructed-bisection rows), wrapped butterflies with the
// exact solver disabled, CCCs at the default exact budget. Every point
// is validated through the same parser the live endpoint uses, so a grid
// can only ever contain servable requests.
func ParseGrid(spec string) ([]GridPoint, error) {
	var grid []GridPoint
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("precompute: entry %q: want network:lo-hi[:exact-nodes]", entry)
		}
		network := parts[0]
		lo, hi, ok := strings.Cut(parts[1], "-")
		if !ok {
			hi = lo // single size: "bn:12"
		}
		loV, err1 := strconv.Atoi(lo)
		hiV, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || loV > hiV || loV < 1 || hiV > 30 {
			return nil, fmt.Errorf("precompute: entry %q: bad log2-size range %q", entry, parts[1])
		}
		exactNodes := 32
		if len(parts) == 3 {
			exactNodes, err1 = strconv.Atoi(parts[2])
			if err1 != nil {
				return nil, fmt.Errorf("precompute: entry %q: bad exact-nodes %q", entry, parts[2])
			}
		}
		for logN := loV; logN <= hiV; logN++ {
			p := GridPoint{Network: network, LogN: logN, ExactNodes: exactNodes}
			if _, err := p.request(); err != nil {
				return nil, fmt.Errorf("precompute: entry %q at n=2^%d: %w", entry, logN, err)
			}
			grid = append(grid, p)
		}
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("precompute: empty grid spec %q", spec)
	}
	return grid, nil
}

// request canonicalizes the point through the live endpoint's parser, so
// precomputed keys are exactly the keys real queries produce.
func (p GridPoint) request() (queryRequest, error) {
	q := queryValues{
		"network":     []string{p.Network},
		"n":           []string{strconv.Itoa(p.N())},
		"exact-nodes": []string{strconv.Itoa(p.ExactNodes)},
	}
	return parseBisectionRequest(q)
}

// PrecomputeResult summarizes one batch fill.
type PrecomputeResult struct {
	Solved  int // solved and stored
	Skipped int // already present in the store
	Failed  int // solve error or budget-truncated (not stored)
}

// Precompute fills the configured store for every grid point not already
// present, at the given worker parallelism (≤0: GOMAXPROCS), each solve
// under the server's MaxDeadline budget. Only complete solves are
// stored — a truncated row could otherwise mask the full answer forever.
// Cancelling ctx stops cleanly after the in-flight points; logf (may be
// nil) receives one line per point.
func (s *Server) Precompute(ctx context.Context, grid []GridPoint, workers int, logf func(format string, args ...interface{})) (PrecomputeResult, error) {
	if s.cfg.Store == nil {
		return PrecomputeResult{}, fmt.Errorf("precompute: server has no store")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	var solved, skipped, failed atomic.Int64
	points := make(chan GridPoint)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range points {
				key, err := s.precomputeOne(ctx, p)
				switch {
				case err == errAlreadyStored:
					skipped.Add(1)
					logf("precompute: %s (already stored)", key)
				case err != nil:
					failed.Add(1)
					logf("precompute: %s FAILED: %v", key, err)
				default:
					solved.Add(1)
					metricPrecomputed.Inc()
					logf("precompute: %s stored", key)
				}
			}
		}()
	}
feed:
	for _, p := range grid {
		select {
		case points <- p:
		case <-ctx.Done():
			break feed
		}
	}
	close(points)
	wg.Wait()

	res := PrecomputeResult{
		Solved:  int(solved.Load()),
		Skipped: int(skipped.Load()),
		Failed:  int(failed.Load()),
	}
	if err := s.cfg.Store.Sync(); err != nil {
		return res, err
	}
	if res.Failed > 0 {
		return res, fmt.Errorf("precompute: %d of %d grid points failed", res.Failed, len(grid))
	}
	return res, ctx.Err()
}

// errAlreadyStored marks a grid point skipped because the store already
// holds its key.
var errAlreadyStored = fmt.Errorf("already stored")

// precomputeOne solves one grid point and stores its rendered body under
// the canonical request key, exactly as the live solve path would have
// rendered it.
func (s *Server) precomputeOne(ctx context.Context, p GridPoint) (string, error) {
	req, err := p.request()
	if err != nil {
		return "", err
	}
	key := "bisection?" + req.Key()
	if s.cfg.Store.Has(key) {
		return key, errAlreadyStored
	}
	solveCtx, cancel := context.WithTimeout(ctx, s.cfg.MaxDeadline)
	defer cancel()
	begin := time.Now()
	m, err := req.Solve(solveCtx, s)
	if err != nil {
		return key, err
	}
	if solveCtx.Err() != nil {
		return key, fmt.Errorf("budget %s expired before a complete solve", s.cfg.MaxDeadline)
	}
	resp, err := s.render(m, "bisection", key, s.cfg.MaxDeadline, true, time.Since(begin))
	if err != nil {
		return key, err
	}
	return key, s.cfg.Store.Put(key, resp.body)
}
