package serve

import "net/http"

// PeerRouter shards canonical request keys across a cluster of
// butterflyd peers. The serve layer stays transport-agnostic: it hands
// the router the request and the canonical key, and either relays the
// owning peer's response or answers locally. internal/cluster provides
// the implementation; the indirection keeps the import pointing from
// cluster to serve, never back.
type PeerRouter interface {
	// Route resolves key's owner and, when it is a remote peer, returns
	// that peer's response. ok is false when this node should answer
	// locally: it owns the key, the request already arrived from a peer,
	// or the owner is unreachable and local solving is the fallback.
	Route(r *http.Request, key string) (resp *PeerResponse, ok bool, err error)
	// Self is this node's cluster address — the X-Cluster-Peer value of
	// locally answered responses.
	Self() string
}

// PeerResponse is an owning peer's answer, relayed verbatim.
type PeerResponse struct {
	// Status is the peer's HTTP status; Body its exact response bytes —
	// a forwarded answer is byte-identical to asking the owner directly.
	Status int
	Body   []byte
	// Source is the peer's X-Cache disposition (hit, store-hit, miss...).
	Source string
	// Peer is the address that answered — the X-Cluster-Peer provenance.
	Peer string
}
