package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestCoalescedFollowerSurvivesLeaderCancel pins the coalescing
// detachment fix: the leader's solve used to run on the leader's own
// request context, so a leader whose client hung up while queued for a
// solve slot poisoned every coalesced follower with its cancellation.
// The solve must run on a server-lifetime context bounded by the budget:
// leader cancels, follower still gets a complete 200.
func TestCoalescedFollowerSurvivesLeaderCancel(t *testing.T) {
	blockerGate := make(chan struct{})
	blockerStarted := make(chan struct{}, 1)
	s := New(Config{MaxInflight: 1})
	s.solveHook = func(key string) {
		if strings.Contains(key, "network=bn") {
			blockerStarted <- struct{}{}
			<-blockerGate
		}
	}
	base := startServer(t, s)

	// Occupy the only solve slot, so the leader of interest queues.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		st, _, body := get(t, base+"/v1/bisection?network=bn&n=2")
		if st != http.StatusOK {
			t.Errorf("blocker: status %d: %s", st, body)
		}
	}()
	<-blockerStarted

	// The leader: a client that will hang up while queued.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	url := base + "/v1/bisection?network=wn&n=4"
	go func() {
		defer close(leaderDone)
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodGet, url, nil)
		if err != nil {
			t.Errorf("leader request: %v", err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.queued.Load() >= 1 }, "leader never queued for a slot")

	// The follower coalesces behind the queued leader.
	coalescedBefore := metricCoalesced.Value()
	type outcome struct {
		status int
		source string
		body   []byte
	}
	followerDone := make(chan outcome, 1)
	go func() {
		st, src, body := get(t, url)
		followerDone <- outcome{st, src, body}
	}()
	waitFor(t, func() bool { return metricCoalesced.Value() > coalescedBefore },
		"follower never attached to the leader's flight")

	// The leader's client gives up; the detached solve must not notice.
	cancelLeader()
	<-leaderDone
	time.Sleep(20 * time.Millisecond) // let any (buggy) cancellation propagate
	close(blockerGate)

	o := <-followerDone
	if o.status != http.StatusOK {
		t.Fatalf("follower after leader cancel: status %d (%s): %s", o.status, o.source, o.body)
	}
	if o.source != "coalesced" {
		t.Fatalf("follower source = %q, want coalesced", o.source)
	}
	_, row := decodeResponse(t, o.body)
	if row["complete"] != true {
		t.Fatalf("follower got an incomplete answer: %v", row)
	}
	<-blockerDone
}

// TestStoreHitRewarmDoesNotRespill pins the spill/re-warm interaction: a
// store hit re-inserts the response into the LRU, and that entry's later
// eviction must NOT append a duplicate record to the store — store.writes
// stays flat across a hit→evict cycle of an already-persisted key.
func TestStoreHitRewarmDoesNotRespill(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })

	writes := obs.Default.Counter("store.writes")
	s := New(Config{CacheEntries: 1, Store: st})
	base := startServer(t, s)
	urlA := base + "/v1/bisection?network=wn&n=4"

	// Solve A, then displace it so it spills to the store.
	if status, src, _ := get(t, urlA); status != http.StatusOK || src != "miss" {
		t.Fatalf("prime A: status=%d source=%q", status, src)
	}
	if status, _, _ := get(t, base+"/v1/bisection?network=wn&n=8"); status != http.StatusOK {
		t.Fatalf("displace A: status=%d", status)
	}
	waitFor(t, func() bool { return st.Len() >= 1 }, "eviction never spilled A to the store")

	// Store hit: A re-enters the LRU.
	status, src, _ := get(t, urlA)
	if status != http.StatusOK || src != "store-hit" {
		t.Fatalf("re-warm A: status=%d source=%q, want store-hit", status, src)
	}

	// Displace the re-warmed A again: its eviction must skip the spill
	// (the store already holds the record), so writes stays flat.
	writesBefore := writes.Value()
	lenBefore := st.Len()
	if status, _, _ := get(t, base+"/v1/bisection?network=bn&n=2"); status != http.StatusOK {
		t.Fatalf("displace re-warmed A: status=%d", status)
	}
	waitFor(t, func() bool {
		if resp, ok := s.cache.get("bisection?network=wn&n=4&exact-nodes=32"); ok && resp != nil {
			return false // A still resident, eviction not done yet
		}
		return true
	}, "re-warmed A never left the cache")
	if got := writes.Value() - writesBefore; got != 0 {
		t.Fatalf("store.writes grew by %d across a hit→evict cycle, want 0", got)
	}
	if st.Len() != lenBefore {
		t.Fatalf("store keys went %d → %d across a hit→evict cycle", lenBefore, st.Len())
	}

	// And A is still answerable from disk.
	if status, src, _ := get(t, urlA); status != http.StatusOK || src != "store-hit" {
		t.Fatalf("A after cycle: status=%d source=%q, want store-hit", status, src)
	}
}
