package repro

import (
	"os/exec"
	"testing"
)

// TestBinariesSmoke runs every executable and example once with fast
// arguments, pinning the end-to-end wiring (flag parsing, report assembly,
// rendering). Skipped under -short: each run pays a `go run` compile.
func TestBinariesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke runs")
	}
	cases := [][]string{
		{"./cmd/bwtable", "-max-log", "12"},
		{"./cmd/mostable", "-max-j", "64"},
		{"./cmd/exptable", "-n", "64", "-max-d", "2"},
		{"./cmd/routesim", "-max-log", "5"},
		{"./cmd/butterfly", "-n", "8"},
		{"./cmd/butterfly", "-dot", "-n", "4"},
		{"./cmd/figdata", "-series", "bisection", "-max-log", "12"},
		{"./cmd/figdata", "-series", "mos", "-max-j", "64"},
		{"./cmd/paperrepro", "-quick"},
		{"./examples/quickstart"},
		{"./examples/bisection083"},
		{"./examples/expansion-survey"},
		{"./examples/permutation-routing"},
		{"./examples/dissemination"},
		{"./examples/vlsi-layout"},
	}
	for _, c := range cases {
		c := c
		t.Run(c[0], func(t *testing.T) {
			args := append([]string{"run"}, c...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %v: %v\n%s", c, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run %v produced no output", c)
			}
		})
	}
}
