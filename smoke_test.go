package repro

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestBinariesSmoke runs every executable and example once with fast
// arguments, pinning the end-to-end wiring (flag parsing, report assembly,
// rendering). Skipped under -short: each run pays a `go run` compile.
func TestBinariesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke runs")
	}
	cases := [][]string{
		{"./cmd/bwtable", "-max-log", "12"},
		{"./cmd/mostable", "-max-j", "64"},
		{"./cmd/exptable", "-n", "64", "-max-d", "2"},
		{"./cmd/routesim", "-max-log", "5"},
		{"./cmd/routesim", "-max-log", "5", "-trials", "10", "-timeout", "30s"},
		{"./cmd/butterfly", "-n", "8"},
		{"./cmd/butterfly", "-dot", "-n", "4"},
		{"./cmd/figdata", "-series", "bisection", "-max-log", "12"},
		{"./cmd/figdata", "-series", "mos", "-max-j", "64"},
		{"./cmd/paperrepro", "-quick"},
		{"./examples/quickstart"},
		{"./examples/bisection083"},
		{"./examples/expansion-survey"},
		{"./examples/permutation-routing"},
		{"./examples/dissemination"},
		{"./examples/vlsi-layout"},
	}
	for _, c := range cases {
		c := c
		t.Run(c[0], func(t *testing.T) {
			args := append([]string{"run"}, c...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %v: %v\n%s", c, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("go run %v produced no output", c)
			}
		})
	}
}

// buildBinary compiles one cmd into the test's temp dir and returns the
// executable path (go run swallows the program's exit code, so the
// exit-code tests must exec the binary directly).
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := t.TempDir() + "/" + pkg[strings.LastIndex(pkg, "/")+1:]
	if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// TestBinariesRejectNonsenseFlags pins the fail-fast contract: flag values
// that request impossible work (zero trials, negative workers, out-of-range
// size exponents) exit with code 2 and usage, like flag-parse errors, and
// never reach the engines. Skipped under -short: each case pays a compile.
func TestBinariesRejectNonsenseFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke runs")
	}
	cases := [][]string{
		{"./cmd/routesim", "-trials", "0"},
		{"./cmd/routesim", "-trials", "-5"},
		{"./cmd/routesim", "-workers", "-1"},
		{"./cmd/routesim", "-max-log", "25"},
		{"./cmd/exptable", "-n", "100"},
		{"./cmd/exptable", "-kmax", "0"},
		{"./cmd/exptable", "-workers", "-2"},
		{"./cmd/exptable", "-max-d", "0"},
		{"./cmd/bwtable", "-max-log", "49"},
		{"./cmd/bwtable", "-exact-nodes", "-1"},
		{"./cmd/figdata", "-max-log", "49"},
	}
	bins := make(map[string]string)
	for _, c := range cases {
		if _, ok := bins[c[0]]; !ok {
			bins[c[0]] = buildBinary(t, c[0])
		}
	}
	for _, c := range cases {
		c := c
		t.Run(c[0]+" "+c[1]+" "+c[2], func(t *testing.T) {
			out, err := exec.Command(bins[c[0]], c[1:]...).CombinedOutput()
			exitErr, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%v: err=%v (want exit code 2)\n%s", c, err, out)
			}
			if code := exitErr.ExitCode(); code != 2 {
				t.Fatalf("%v: exit code %d, want 2\n%s", c, code, out)
			}
			if !strings.Contains(string(out), "usage") {
				t.Fatalf("%v: rejection does not show usage:\n%s", c, out)
			}
		})
	}
}

// TestExptableTimeoutExitsCleanly is the cancelled-solver smoke: an exact
// budget far beyond what 1s can certify must still produce the full table
// (incumbent rows flagged non-exact) and exit 0 — the runaway-search
// failure mode this PR removes.
func TestExptableTimeoutExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke runs")
	}
	start := time.Now()
	out, err := exec.Command("go", "run", "./cmd/exptable",
		"-n", "64", "-max-d", "2", "-exact-nodes", "512", "-kmax", "32",
		"-timeout", "1s").CombinedOutput()
	if err != nil {
		t.Fatalf("timed-out exptable failed: %v\n%s", err, out)
	}
	if took := time.Since(start); took > 2*time.Minute {
		t.Fatalf("timed-out exptable took %v", took)
	}
	if len(out) == 0 {
		t.Fatal("timed-out exptable produced no output")
	}
}
